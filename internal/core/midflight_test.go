package core

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/rgraph"
)

// recount rebuilds the density state from the router's current graphs.
func (r *router) recount() *density.State {
	d := density.New(r.ckt.Channels(), r.ckt.Cols)
	for _, g := range r.graphs {
		for _, e := range g.AliveEdges() {
			ed := &g.Edges[e]
			if ed.Kind != rgraph.ETrunk {
				continue
			}
			d.Add(ed.Ch, ed.X1, ed.X2, g.Pitch)
			if ed.Bridge {
				d.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
			}
		}
	}
	return d
}

// TestDensityConsistentAfterEveryDeletion drives the router step by step
// (random and heuristic selections interleaved) and compares the
// incremental density state against a full recount after every single
// deletion — the strongest incremental-bookkeeping check.
func TestDensityConsistentAfterEveryDeletion(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{circuit.SampleSmall, circuit.SampleDiffCross} {
		r := newTestRouter(t, build(), Config{UseConstraints: true})
		rng := rand.New(rand.NewSource(61))
		step := 0
		for {
			var cand candidate
			var ok bool
			if step%2 == 0 {
				cand, ok = r.selectEdge(nil, false)
			} else {
				// Random legal candidate.
				var all []candidate
				for n, g := range r.graphs {
					for _, e := range g.NonBridges() {
						all = append(all, candidate{int32(n), int32(e)})
					}
				}
				if len(all) == 0 {
					ok = false
				} else {
					cand, ok = all[rng.Intn(len(all))], true
				}
			}
			if !ok {
				break
			}
			if err := r.deleteEdge(int(cand.net), int(cand.edge)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			want := r.recount()
			for ch := 0; ch < r.ckt.Channels(); ch++ {
				if got, w := r.dens.Channel(ch), want.Channel(ch); got != w {
					t.Fatalf("step %d channel %d: incremental %+v != recount %+v", step, ch, got, w)
				}
			}
			// Wire lengths track the tentative trees exactly.
			for n := range r.graphs {
				tr, err := r.graphs[n].Tentative()
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if diff := tr.Length - r.wl[n]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("step %d net %d: cached length %v, fresh %v", step, n, r.wl[n], tr.Length)
				}
			}
			step++
		}
		if step == 0 {
			t.Fatal("no deletions exercised")
		}
	}
}

// TestLongerEdgeTieBreak: with identical delay and density criteria the
// longer edge is selected (§3.4's final condition).
func TestLongerEdgeTieBreak(t *testing.T) {
	r := newTestRouter(t, circuit.SampleSmall(), Config{UseConstraints: false})
	// Find two trunk candidates in the same channel with equal density
	// context but different lengths — fall back to synthetic comparison.
	var cands []candidate
	for n, g := range r.graphs {
		for _, e := range g.NonBridges() {
			cands = append(cands, candidate{int32(n), int32(e)})
		}
	}
	for i := 0; i < len(cands); i++ {
		for j := 0; j < len(cands); j++ {
			if i == j {
				continue
			}
			a, b := cands[i], cands[j]
			if r.densCompare(a, b) != 0 {
				continue
			}
			la, lb := r.edgeOf(a).Len, r.edgeOf(b).Len
			if la <= lb+fEps {
				continue
			}
			// a is strictly longer with tied density: a must win.
			if !r.less(a, b, false) {
				t.Fatalf("longer edge (%v, %.1fµm) lost to (%v, %.1fµm)", a, la, b, lb)
			}
			if r.less(b, a, false) {
				t.Fatal("tie-break not antisymmetric")
			}
			return
		}
	}
	t.Skip("no density-tied candidate pair in fixture")
}
