package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/rgraph"
)

func route(t *testing.T, ckt *circuit.Circuit, cfg Config) *Result {
	t.Helper()
	res, err := Route(ckt, cfg)
	if err != nil {
		t.Fatalf("Route(%s): %v", ckt.Name, err)
	}
	return res
}

func TestRouteSampleSmallConstrained(t *testing.T) {
	res := route(t, circuit.SampleSmall(), Config{UseConstraints: true})
	for n, g := range res.Graphs {
		if !g.IsTree() {
			t.Errorf("net %s not a tree", res.Ckt.Nets[n].Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("net %s: %v", res.Ckt.Nets[n].Name, err)
		}
		if res.WirelenUm[n] <= 0 {
			t.Errorf("net %s: wirelength %v", res.Ckt.Nets[n].Name, res.WirelenUm[n])
		}
	}
	if res.Delay <= 0 {
		t.Error("no constrained-path delay reported")
	}
	if res.Violations() != 0 {
		t.Errorf("sample circuit should meet its constraint, margin %v", res.Margin(0))
	}
	if res.AddedPitches < 1 {
		t.Error("SampleSmall requires feed-cell insertion")
	}
}

func TestRouteUnconstrainedBaseline(t *testing.T) {
	ckt := circuit.SampleSmall()
	con := route(t, ckt, Config{UseConstraints: true})
	unc := route(t, ckt, Config{UseConstraints: false})
	// The unconstrained run still reports delays on the constraint paths.
	if unc.Delay <= 0 {
		t.Fatal("unconstrained run must evaluate the constraint paths")
	}
	// The constrained run must never be slower on the worst path.
	if con.Delay > unc.Delay+1e-6 {
		t.Errorf("constrained delay %v worse than unconstrained %v", con.Delay, unc.Delay)
	}
}

// rebuildDensity recomputes the density state from scratch from the final
// graphs; it must match the incrementally maintained one.
func rebuildDensity(res *Result) *density.State {
	d := density.New(res.Ckt.Channels(), res.Ckt.Cols)
	for _, g := range res.Graphs {
		for _, e := range g.AliveEdges() {
			ed := &g.Edges[e]
			if ed.Kind != rgraph.ETrunk {
				continue
			}
			d.Add(ed.Ch, ed.X1, ed.X2, g.Pitch)
			if ed.Bridge {
				d.AddBridge(ed.Ch, ed.X1, ed.X2, g.Pitch)
			}
		}
	}
	return d
}

func TestDensityStateConsistent(t *testing.T) {
	for _, cfg := range []Config{{UseConstraints: true}, {UseConstraints: false}} {
		res := route(t, circuit.SampleSmall(), cfg)
		want := rebuildDensity(res)
		for ch := 0; ch < res.Ckt.Channels(); ch++ {
			if got, w := res.Dens.Channel(ch), want.Channel(ch); got != w {
				t.Errorf("cfg=%+v channel %d: incremental %+v != scratch %+v", cfg, ch, got, w)
			}
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	a := route(t, circuit.SampleSmall(), Config{UseConstraints: true})
	b := route(t, circuit.SampleSmall(), Config{UseConstraints: true})
	if a.Delay != b.Delay || a.TotalWirelenUm != b.TotalWirelenUm {
		t.Fatalf("non-deterministic: (%v,%v) vs (%v,%v)", a.Delay, a.TotalWirelenUm, b.Delay, b.TotalWirelenUm)
	}
	for n := range a.WirelenUm {
		if a.WirelenUm[n] != b.WirelenUm[n] {
			t.Fatalf("net %d wirelength differs between runs", n)
		}
	}
}

func TestRouteDifferentialPairMirrored(t *testing.T) {
	res := route(t, circuit.SampleDiff(), Config{UseConstraints: true})
	// Nets 0 (q) and 1 (qb) must have identical alive edge sets.
	ga, gb := res.Graphs[0], res.Graphs[1]
	if len(ga.Edges) != len(gb.Edges) {
		t.Fatalf("pair graphs differ in size")
	}
	for e := range ga.Edges {
		if ga.Edges[e].Alive != gb.Edges[e].Alive {
			t.Fatalf("edge %d alive mismatch across pair: %v vs %v", e, ga.Edges[e].Alive, gb.Edges[e].Alive)
		}
	}
	// Both routed as trees of equal length (parallel wiring).
	if math.Abs(res.WirelenUm[0]-res.WirelenUm[1]) > 1e-9 {
		t.Fatalf("pair lengths differ: %v vs %v", res.WirelenUm[0], res.WirelenUm[1])
	}
}

func TestRouteElmoreModel(t *testing.T) {
	lum := route(t, circuit.SampleSmall(), Config{UseConstraints: true})
	elm := route(t, circuit.SampleSmall(), Config{UseConstraints: true, DelayModel: Elmore, RPerUm: 0.0005})
	if elm.Delay <= 0 {
		t.Fatal("Elmore run reported no delay")
	}
	// With small wire resistance the Elmore delay must be close to (and
	// at least) the lumped fan-in + total-cap delay on the same topology.
	if elm.Delay < lum.Delay*0.5 || elm.Delay > lum.Delay*2 {
		t.Errorf("Elmore delay %v implausible vs lumped %v", elm.Delay, lum.Delay)
	}
}

func TestRoutePhasesTraced(t *testing.T) {
	var buf bytes.Buffer
	res := route(t, circuit.SampleSmall(), Config{UseConstraints: true, Trace: &buf})
	names := map[string]bool{}
	for _, ps := range res.Phases {
		names[ps.Name] = true
	}
	for _, want := range []string{"initial", "recover-violations", "improve-delay", "improve-area"} {
		if !names[want] {
			t.Errorf("phase %q missing from result", want)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("phase %q missing from trace", want)
		}
	}
	if res.Phases[0].Deletions == 0 {
		t.Error("initial phase deleted nothing; graphs had no redundancy?")
	}
}

func TestRouteSkipImprovement(t *testing.T) {
	res := route(t, circuit.SampleSmall(), Config{UseConstraints: true, SkipImprovement: true})
	if len(res.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(res.Phases))
	}
	for n, g := range res.Graphs {
		if !g.IsTree() {
			t.Errorf("net %s not a tree", res.Ckt.Nets[n].Name)
		}
	}
}

func TestTentativeCacheAblationExact(t *testing.T) {
	// A2: disabling the d'(e) shortcut must not change the result, only
	// the work done.
	a := route(t, circuit.SampleSmall(), Config{UseConstraints: true})
	b := route(t, circuit.SampleSmall(), Config{UseConstraints: true, NoTentativeCache: true})
	if a.Delay != b.Delay || a.TotalWirelenUm != b.TotalWirelenUm {
		t.Fatalf("shortcut changed the result: (%v,%v) vs (%v,%v)",
			a.Delay, a.TotalWirelenUm, b.Delay, b.TotalWirelenUm)
	}
}

func TestRouteInputUntouched(t *testing.T) {
	ckt := circuit.SampleSmall()
	cells := len(ckt.Cells)
	cols := ckt.Cols
	_ = route(t, ckt, Config{UseConstraints: true})
	if len(ckt.Cells) != cells || ckt.Cols != cols {
		t.Fatal("Route mutated its input circuit")
	}
	if err := ckt.Validate(); err != nil {
		t.Fatalf("input circuit damaged: %v", err)
	}
}

func TestTerminalPositionsResolved(t *testing.T) {
	res := route(t, circuit.SampleSmall(), Config{UseConstraints: true})
	// In the final trees every terminal connects through at least one of
	// its candidate positions, and every used position is genuine.
	for n, g := range res.Graphs {
		terms := res.Ckt.Terminals(n)
		for ti, tv := range g.TermVert {
			used := 0
			for _, e := range g.AliveEdges() {
				ed := &g.Edges[e]
				if ed.Kind == rgraph.ECorr && (ed.U == tv || ed.V == tv) {
					used++
				}
			}
			if used == 0 {
				t.Errorf("net %s terminal %s unconnected", res.Ckt.Nets[n].Name, res.Ckt.PinName(terms[ti]))
			}
			if used > len(res.Ckt.PositionsOf(terms[ti])) {
				t.Errorf("net %s terminal %s uses %d positions", res.Ckt.Nets[n].Name, res.Ckt.PinName(terms[ti]), used)
			}
		}
	}
}

func TestPhaseDeletionKinds(t *testing.T) {
	res := route(t, circuit.SampleSmall(), Config{UseConstraints: true})
	initial := res.Phases[0]
	sum := 0
	for _, c := range initial.ByKind {
		sum += c
	}
	if sum != initial.Deletions {
		t.Fatalf("ByKind sums to %d, Deletions = %d", sum, initial.Deletions)
	}
	if initial.ByKind[rgraph.ETrunk] == 0 {
		t.Error("no trunk deletions recorded; trunk-first rule inert?")
	}
}
