package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/rgraph"
)

// TestDiffPairAcrossRows routes a differential pair that must cross a cell
// row: the pair's feedthroughs sit on adjacent columns, the trees stay
// mirrored through the feedthrough edges, and feed re-assignment during
// reroute keeps the pairing intact.
func TestDiffPairAcrossRows(t *testing.T) {
	for _, cfg := range []Config{
		{UseConstraints: true},
		{UseConstraints: true, NoFeedReroute: true},
		{UseConstraints: false},
	} {
		res := route(t, circuit.SampleDiffCross(), cfg)
		q, qb := 0, 1
		fq, fqb := res.Feeds[q], res.Feeds[qb]
		if len(fq) != 1 || len(fqb) != 1 {
			t.Fatalf("cfg %+v: pair feeds %v / %v, want one row each", cfg, fq, fqb)
		}
		d := fqb[0].Col - fq[0].Col
		if d != 1 && d != -1 {
			t.Fatalf("cfg %+v: pair feed columns %d/%d not adjacent", cfg, fq[0].Col, fqb[0].Col)
		}
		// Mirrored alive sets including the feedthrough edges.
		ga, gb := res.Graphs[q], res.Graphs[qb]
		feeds := 0
		for e := range ga.Edges {
			if ga.Edges[e].Alive != gb.Edges[e].Alive {
				t.Fatalf("cfg %+v: pair edge %d alive mismatch", cfg, e)
			}
			if ga.Edges[e].Alive && ga.Edges[e].Kind == rgraph.EFeed {
				feeds++
				if gb.Edges[e].Kind != rgraph.EFeed {
					t.Fatalf("cfg %+v: mirrored edge %d kind mismatch", cfg, e)
				}
			}
		}
		if feeds != 1 {
			t.Fatalf("cfg %+v: %d feedthrough edges in pair tree, want 1", cfg, feeds)
		}
		if res.WirelenUm[q] != res.WirelenUm[qb] {
			t.Fatalf("cfg %+v: pair lengths differ: %v vs %v", cfg, res.WirelenUm[q], res.WirelenUm[qb])
		}
	}
}
