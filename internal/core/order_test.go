package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/lowerbound"
)

func TestNetOrderStrategies(t *testing.T) {
	ckt := circuit.SampleSmall()
	// Slack: nil-safe, returns a permutation when constraints exist.
	order, err := netOrder(ckt, Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(ckt.Nets) {
		t.Fatalf("slack order has %d entries", len(order))
	}
	// Slack degrades to index order without constraints.
	order, err = netOrder(ckt, Config{UseConstraints: false})
	if err != nil || order != nil {
		t.Fatalf("unconstrained slack order = %v, %v", order, err)
	}
	// HPWL: descending half-perimeter.
	order, err = netOrder(ckt, Config{Order: OrderHPWL})
	if err != nil {
		t.Fatal(err)
	}
	hp := lowerbound.NetHPWL(ckt)
	for i := 1; i < len(order); i++ {
		if hp[order[i-1]] < hp[order[i]] {
			t.Fatalf("HPWL order not descending at %d", i)
		}
	}
	// Fanout: descending sink count.
	order, err = netOrder(ckt, Config{Order: OrderFanout})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if len(ckt.Fanouts(order[i-1])) < len(ckt.Fanouts(order[i])) {
			t.Fatalf("fanout order not descending at %d", i)
		}
	}
	// ArbitraryNetOrder overrides to index order.
	order, err = netOrder(ckt, Config{UseConstraints: true, ArbitraryNetOrder: true})
	if err != nil || order != nil {
		t.Fatalf("arbitrary order = %v, %v", order, err)
	}
}

func TestOrderStrategyString(t *testing.T) {
	for s, want := range map[OrderStrategy]string{
		OrderSlack: "slack", OrderIndex: "index", OrderHPWL: "hpwl", OrderFanout: "fanout", 99: "?",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
