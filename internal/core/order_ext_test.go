package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/verify"
)

// TestAllOrdersRouteCleanly runs every ordering strategy through the full
// pipeline on C1P1 and audits each result.
func TestAllOrdersRouteCleanly(t *testing.T) {
	p, err := gen.Dataset("C1P1")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	delays := map[core.OrderStrategy]float64{}
	for _, s := range []core.OrderStrategy{core.OrderSlack, core.OrderIndex, core.OrderHPWL, core.OrderFanout} {
		res, err := core.Route(ckt, core.Config{UseConstraints: true, Order: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if v := verify.Routing(res); !v.OK() {
			t.Fatalf("%v: %v", s, v.Problems[0])
		}
		delays[s] = res.Delay
	}
	// The paper's slack order must be the best (or tied best) for delay
	// on the reference data set.
	for s, d := range delays {
		if delays[core.OrderSlack] > d+1e-6 {
			t.Errorf("slack order (%.1f ps) beaten by %v (%.1f ps)", delays[core.OrderSlack], s, d)
		}
	}
}
