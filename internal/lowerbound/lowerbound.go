// Package lowerbound computes the critical-path-delay lower bound of
// Harada & Kitazawa Table 3: every net's wire length is assumed to be half
// the perimeter of the bounding rectangle of its terminals, and the delay
// model is evaluated on those lengths.
package lowerbound

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/dgraph"
)

// NetHPWL returns the half-perimeter wire length of every net, µm.
// Horizontal distance uses the column pitch; vertical distance counts the
// row height per channel crossed (channel heights are unknown before
// routing, so they are optimistically zero — it is a lower bound).
//
// Terminals with several candidate positions contribute the choice that
// minimizes the bounding box: exhaustively for small nets, greedily for
// large ones.
func NetHPWL(ckt *circuit.Circuit) []float64 {
	out := make([]float64, len(ckt.Nets))
	for n := range ckt.Nets {
		out[n] = netHPWL(ckt, n)
	}
	return out
}

type pos = circuit.Position

func netHPWL(ckt *circuit.Circuit, n int) float64 {
	terms := ckt.Terminals(n)
	options := make([][]pos, len(terms))
	combos := 1
	for i, t := range terms {
		options[i] = ckt.PositionsOf(t)
		if combos <= 1<<16 {
			combos *= len(options[i])
		}
	}
	if combos <= 1<<10 {
		return exhaustiveHPWL(ckt, options)
	}
	return greedyHPWL(ckt, options)
}

func boxCost(ckt *circuit.Circuit, minC, maxC, minCh, maxCh int) float64 {
	return float64(maxC-minC)*ckt.Tech.PitchX + float64(maxCh-minCh)*ckt.Tech.RowHeight
}

func exhaustiveHPWL(ckt *circuit.Circuit, options [][]pos) float64 {
	best := math.Inf(1)
	choice := make([]int, len(options))
	for {
		minC, maxC := math.MaxInt32, math.MinInt32
		minCh, maxCh := math.MaxInt32, math.MinInt32
		for i, c := range choice {
			p := options[i][c]
			minC, maxC = min(minC, p.Col), max(maxC, p.Col)
			minCh, maxCh = min(minCh, p.Channel), max(maxCh, p.Channel)
		}
		if cost := boxCost(ckt, minC, maxC, minCh, maxCh); cost < best {
			best = cost
		}
		// Advance the mixed-radix counter.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(options[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return best
		}
	}
}

// greedyHPWL starts from every terminal's first position and iteratively
// moves single terminals to whichever position shrinks the box.
func greedyHPWL(ckt *circuit.Circuit, options [][]pos) float64 {
	choice := make([]int, len(options))
	cost := func() float64 {
		minC, maxC := math.MaxInt32, math.MinInt32
		minCh, maxCh := math.MaxInt32, math.MinInt32
		for i, c := range choice {
			p := options[i][c]
			minC, maxC = min(minC, p.Col), max(maxC, p.Col)
			minCh, maxCh = min(minCh, p.Channel), max(maxCh, p.Channel)
		}
		return boxCost(ckt, minC, maxC, minCh, maxCh)
	}
	best := cost()
	for pass := 0; pass < 4; pass++ {
		improved := false
		for i := range choice {
			old := choice[i]
			for c := range options[i] {
				if c == old {
					continue
				}
				choice[i] = c
				if v := cost(); v < best {
					best, old = v, c
					improved = true
				}
			}
			choice[i] = old
		}
		if !improved {
			break
		}
	}
	return best
}

// Delay evaluates the timing model with HPWL wire lengths: the Table 3
// lower bound. It returns the per-constraint critical delays and the
// overall worst one.
func Delay(ckt *circuit.Circuit) (perCons []float64, worst float64, err error) {
	g, err := dgraph.New(ckt)
	if err != nil {
		return nil, 0, err
	}
	tm := g.NewTiming()
	tm.SetLumped(NetHPWL(ckt))
	tm.Analyze()
	perCons = make([]float64, len(tm.Cons))
	for p := range tm.Cons {
		perCons[p] = tm.Cons[p].Worst
		if perCons[p] > worst {
			worst = perCons[p]
		}
	}
	return perCons, worst, nil
}
