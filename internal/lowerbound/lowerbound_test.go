package lowerbound

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestNetHPWLSampleSmall(t *testing.T) {
	ckt := circuit.SampleSmall()
	hp := NetHPWL(ckt)
	if len(hp) != len(ckt.Nets) {
		t.Fatalf("got %d lengths for %d nets", len(hp), len(ckt.Nets))
	}
	// Net n2: g1.Z at (ch1, col10), g2.B at (ch1, col5): pure horizontal,
	// 5 columns = 50 µm.
	if hp[2] != 50 {
		t.Fatalf("HPWL(n2) = %v, want 50", hp[2])
	}
	// Net n3: g2.Z (ch2, col6) -> i1.A (ch1, col12): 6 columns + 1
	// channel = 60 + 40 µm.
	if hp[3] != 100 {
		t.Fatalf("HPWL(n3) = %v, want 100", hp[3])
	}
	// Net nck: CKIN (ch0, col18) -> d0.CK (ch0, col18): zero box.
	if hp[6] != 0 {
		t.Fatalf("HPWL(nck) = %v, want 0", hp[6])
	}
	// Net n4: i1.Z (ch2, col13) -> d0.D (ch0, col16): 3 cols + 2 channels
	// = 30 + 80 µm.
	if want := 3*ckt.Tech.PitchX + 2*ckt.Tech.RowHeight; hp[4] != want {
		t.Fatalf("HPWL(n4) = %v, want %v", hp[4], want)
	}
}

func TestMultiPositionTerminalsShrinkTheBox(t *testing.T) {
	ckt := circuit.SampleSmall()
	hp := NetHPWL(ckt)
	// Net nIn: IN0 has candidate columns 0 and 6; b0.A at col 2, g1.B at
	// col 9, all in channel 0. Choosing col 6 gives span [2,9] = 70 µm;
	// choosing col 0 would give 90 µm.
	if hp[0] != 70 {
		t.Fatalf("HPWL(nIn) = %v, want 70 (optimal pad position)", hp[0])
	}
}

func TestExhaustiveMatchesGreedy(t *testing.T) {
	// On small option sets the greedy refinement must find the exhaustive
	// optimum for 2-terminal nets (single free terminal moves suffice).
	ckt := circuit.SampleSmall()
	for n := range ckt.Nets {
		terms := ckt.Terminals(n)
		options := make([][]pos, len(terms))
		for i, tr := range terms {
			options[i] = ckt.PositionsOf(tr)
		}
		ex := exhaustiveHPWL(ckt, options)
		gr := greedyHPWL(ckt, options)
		if gr < ex {
			t.Fatalf("net %s: greedy %v below exhaustive optimum %v", ckt.Nets[n].Name, gr, ex)
		}
	}
}

func TestGreedyHPWLQuick(t *testing.T) {
	// Greedy never beats exhaustive and never returns negative values on
	// random option sets.
	ckt := circuit.SampleSmall()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		options := make([][]pos, k)
		for i := range options {
			m := 1 + rng.Intn(3)
			for j := 0; j < m; j++ {
				options[i] = append(options[i], pos{Channel: rng.Intn(3), Col: rng.Intn(30)})
			}
		}
		ex := exhaustiveHPWL(ckt, options)
		gr := greedyHPWL(ckt, options)
		return gr >= ex-1e-9 && ex >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Fatal(err)
	}
}
