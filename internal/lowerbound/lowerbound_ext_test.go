package lowerbound_test

import (
	"testing"

	"repro/internal/chanroute"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/lowerbound"
)

func TestDelayIsALowerBound(t *testing.T) {
	// The lower bound must not exceed the delay of any actual routing.
	ckt := circuit.SampleSmall()
	_, lb, err := lowerbound.Delay(ckt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := chanroute.Route(res.Ckt, res.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := dgraph.New(res.Ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := dg.NewTiming()
	tm.SetLumped(cr.NetLenUm)
	tm.Analyze()
	for p := range tm.Cons {
		if tm.Cons[p].Worst < lb-1e-9 && p == 0 {
			t.Fatalf("routed delay %v below the lower bound %v", tm.Cons[p].Worst, lb)
		}
	}
	if res.Delay < lb-1e-9 {
		t.Fatalf("estimated delay %v below lower bound %v", res.Delay, lb)
	}
}

// TestHPWLNeverExceedsRoutedLength: property over random samples — the
// per-net HPWL is a lower bound on the router's estimated tree length.
func TestHPWLNeverExceedsRoutedLength(t *testing.T) {
	ckt := circuit.SampleSmall()
	hp := lowerbound.NetHPWL(ckt)
	res, err := core.Route(ckt, core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	// The widened circuit shifts columns, so compare against the widened
	// HPWL (same nets, same indices).
	hpWide := lowerbound.NetHPWL(res.Ckt)
	for n := range res.Ckt.Nets {
		if res.WirelenUm[n] < hpWide[n]-1e-9 {
			t.Errorf("net %s: routed %v below HPWL %v", res.Ckt.Nets[n].Name, res.WirelenUm[n], hpWide[n])
		}
	}
	_ = hp
}
