package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/dgraph"
)

// SlackHistogram draws a text histogram of constraint margins — the view
// a timing engineer scans first. Buckets are sized to cover the observed
// margin range in `bins` equal steps; violations (negative margins) are
// marked.
func SlackHistogram(ckt *circuit.Circuit, tm *dgraph.Timing, bins int) string {
	if bins < 1 {
		bins = 8
	}
	margins := make([]float64, 0, len(tm.Cons))
	for p := range tm.Cons {
		margins = append(margins, tm.Cons[p].Margin)
	}
	var b strings.Builder
	if len(margins) == 0 {
		b.WriteString("Slack histogram: no constraints\n")
		return b.String()
	}
	lo, hi := margins[0], margins[0]
	for _, m := range margins {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(bins)
	counts := make([]int, bins)
	for _, m := range margins {
		i := int((m - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	sort.Float64s(margins)
	fmt.Fprintf(&b, "Slack histogram: %d constraints, margins %.1f .. %.1f ps (median %.1f)\n",
		len(margins), lo, hi, margins[len(margins)/2])
	for i := 0; i < bins; i++ {
		a, z := lo+float64(i)*width, lo+float64(i+1)*width
		mark := " "
		if z <= 0 {
			mark = "!" // whole bucket violating
		} else if a < 0 {
			mark = "~" // bucket straddles zero
		}
		fmt.Fprintf(&b, "%s [%8.1f, %8.1f) %-3d %s\n", mark, a, z, counts[i], strings.Repeat("#", counts[i]))
	}
	return b.String()
}
