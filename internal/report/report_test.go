package report

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/experiment"
)

func sampleRows() []*experiment.Row {
	return []*experiment.Row{
		{Name: "C1P1", Cells: 240, Nets: 200, Cons: 8, LowerBoundPs: 1500,
			Con: experiment.Run{DelayPs: 1650, AreaMm2: 1.5, LengthMm: 180, CPUSec: 0.02},
			Unc: experiment.Run{DelayPs: 1900, AreaMm2: 1.5, LengthMm: 181, CPUSec: 0.01}},
		{Name: "C1P2", Cells: 240, Nets: 200, Cons: 8, LowerBoundPs: 1480,
			Con: experiment.Run{DelayPs: 1700, AreaMm2: 1.7, LengthMm: 240, CPUSec: 0.03},
			Unc: experiment.Run{DelayPs: 2280, AreaMm2: 1.7, LengthMm: 236, CPUSec: 0.02}},
	}
}

func TestTable1(t *testing.T) {
	s := Table1(sampleRows())
	for _, want := range []string{"Table 1", "C1P1", "P2", "cells", "consts."} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2HasBothBlocks(t *testing.T) {
	s := Table2(sampleRows())
	if !strings.Contains(s, "with constraints") || !strings.Contains(s, "without constraints") {
		t.Fatalf("Table2 missing blocks:\n%s", s)
	}
	if !strings.Contains(s, "1650.0") || !strings.Contains(s, "1900.0") {
		t.Fatalf("Table2 missing delays:\n%s", s)
	}
}

func TestTable3AndHeadline(t *testing.T) {
	rows := sampleRows()
	s := Table3(rows)
	if !strings.Contains(s, "1500.0") || !strings.Contains(s, "10.0") {
		t.Fatalf("Table3 content wrong:\n%s", s)
	}
	h := experiment.Summarize(rows)
	hs := HeadlineText(h, len(rows))
	if !strings.Contains(hs, "17.6%") {
		t.Fatalf("headline must cite the paper's 17.6%%:\n%s", hs)
	}
}

func TestFig1(t *testing.T) {
	ckt := circuit.SampleSmall()
	s, err := Fig1DelayGraph(ckt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 1", "b0.Z", "constraint P0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

func TestFig3AndFig4(t *testing.T) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	s := Fig3RoutingGraph(res.Ckt, res.Graphs[1])
	for _, want := range []string{"Fig. 3", "trunk", "corr"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig3 missing %q:\n%s", want, s)
		}
	}
	s4 := Fig4DensityChart(res.Dens, 1)
	if !strings.Contains(s4, "Fig. 4") || !strings.Contains(s4, "C_M=") {
		t.Errorf("Fig4 malformed:\n%s", s4)
	}
	// The chart must contain at least one density mark.
	if !strings.ContainsAny(s4, "#+") {
		t.Errorf("Fig4 chart empty:\n%s", s4)
	}
}

func TestMarkdownTables(t *testing.T) {
	s := Markdown(sampleRows())
	for _, want := range []string{
		"## Table 1", "## Table 2", "## Table 3",
		"| C1P1 |", "lower bound", "17.6%",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Markdown tables keep header/separator/row structure.
	if strings.Count(s, "|------") < 3 {
		t.Error("missing table separators")
	}
}

func TestCongestionTable(t *testing.T) {
	res, err := core.Route(circuit.SampleSmall(), core.Config{UseConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	s := CongestionTable(res.Dens, []int{2, 3, 1})
	for _, want := range []string{"Channel congestion", "C_M", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, " 6\n") { // 2+3+1
		t.Errorf("total wrong:\n%s", s)
	}
}
