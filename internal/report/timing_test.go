package report

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dgraph"
)

func TestTimingReport(t *testing.T) {
	ckt := circuit.SampleSmall()
	g, err := dgraph.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := g.NewTiming()
	wl := make([]float64, len(ckt.Nets))
	for i := range wl {
		wl[i] = 200
	}
	tm.SetLumped(wl)
	tm.Analyze()
	s := TimingReport(ckt, tm, 1)
	for _, want := range []string{"Timing report", "P0", "limit(ps)", "Critical path of P0", "(source)"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	// The path must end at the constraint sink d0.D.
	if !strings.Contains(s, "d0.D") {
		t.Errorf("critical path does not reach d0.D:\n%s", s)
	}
	// Status column present.
	if !strings.Contains(s, "MET") && !strings.Contains(s, "VIOLATED") {
		t.Errorf("no status column:\n%s", s)
	}
}

func TestTimingReportWorstFirst(t *testing.T) {
	ckt := circuit.SampleSmall()
	// Add a second, trivially met constraint; the violated/tighter one
	// must come first in the listing.
	ckt.Cons = append(ckt.Cons, circuit.Constraint{
		Name: "PZ", Limit: 1e9,
		From: ckt.Cons[0].From, To: ckt.Cons[0].To,
	})
	g, err := dgraph.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := g.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	tm.Analyze()
	s := TimingReport(ckt, tm, 0)
	if strings.Index(s, "P0 ") > strings.Index(s, "PZ ") {
		t.Fatalf("constraints not sorted by margin:\n%s", s)
	}
}

func TestSlackHistogram(t *testing.T) {
	ckt := circuit.SampleSmall()
	// A met constraint plus a violated one.
	ckt.Cons = append(ckt.Cons, circuit.Constraint{
		Name: "PT", Limit: 1, From: ckt.Cons[0].From, To: ckt.Cons[0].To,
	})
	g, err := dgraph.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := g.NewTiming()
	tm.SetLumped(make([]float64, len(ckt.Nets)))
	tm.Analyze()
	s := SlackHistogram(ckt, tm, 4)
	if !strings.Contains(s, "2 constraints") {
		t.Fatalf("header wrong:\n%s", s)
	}
	if !strings.Contains(s, "#") {
		t.Fatalf("no bars:\n%s", s)
	}
	if !strings.Contains(s, "!") && !strings.Contains(s, "~") {
		t.Fatalf("violation marker missing:\n%s", s)
	}
	// Degenerate: no constraints.
	empty := SlackHistogram(&circuit.Circuit{}, &dgraph.Timing{}, 4)
	if !strings.Contains(empty, "no constraints") {
		t.Fatalf("empty case wrong: %s", empty)
	}
}
