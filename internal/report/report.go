// Package report renders the paper's tables (1-3) and ASCII versions of
// its concept figures (1, 3, 4) from experiment results.
package report

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/dgraph"
	"repro/internal/experiment"
	"repro/internal/rgraph"
)

// Table1 renders the test-circuit data table.
func Table1(rows []*experiment.Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Test bipolar circuits (synthesized).\n")
	fmt.Fprintf(&b, "%-6s %-8s %-10s %8s %8s %8s\n", "Data", "Circuit", "Placement", "cells", "nets", "consts.")
	for _, r := range rows {
		circuitName, placement := r.Name[:2], r.Name[2:]
		fmt.Fprintf(&b, "%-6s %-8s %-10s %8d %8d %8d\n",
			r.Name, circuitName, placement, r.Cells, r.Nets, r.Cons)
	}
	return b.String()
}

// Table2 renders the routing results, constrained block then
// unconstrained, mirroring the paper.
func Table2(rows []*experiment.Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Experimental results.\n")
	block := func(title string, pick func(*experiment.Row) experiment.Run) {
		fmt.Fprintf(&b, "-- Routing results %s --\n", title)
		fmt.Fprintf(&b, "%-6s %10s %10s %10s %9s\n", "Data", "Delay(ps)", "Area(mm2)", "Len(mm)", "CPU(s)")
		for _, r := range rows {
			run := pick(r)
			fmt.Fprintf(&b, "%-6s %10.1f %10.3f %10.2f %9.3f\n",
				r.Name, run.DelayPs, run.AreaMm2, run.LengthMm, run.CPUSec)
		}
	}
	block("with constraints", func(r *experiment.Row) experiment.Run { return r.Con })
	block("without constraints", func(r *experiment.Row) experiment.Run { return r.Unc })
	return b.String()
}

// Table3 renders the difference-from-lower-bound table.
func Table3(rows []*experiment.Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Difference from the lower bound.\n")
	fmt.Fprintf(&b, "%-6s %12s %14s %14s\n", "Data", "lower(ps)", "Constrained(%)", "Unconstr.(%)")
	for _, r := range rows {
		con, unc := r.DiffPct()
		fmt.Fprintf(&b, "%-6s %12.1f %14.1f %14.1f\n", r.Name, r.LowerBoundPs, con, unc)
	}
	return b.String()
}

// HeadlineText renders the paper's summary statistics next to the paper's
// own numbers.
func HeadlineText(h experiment.Headline, nRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline statistics (paper values in brackets):\n")
	fmt.Fprintf(&b, "  average delay reduction: %.1f%% of the lower bound   [17.6%%]\n", h.AvgReductionOfLB)
	fmt.Fprintf(&b, "  delay improvement range: %.2f%% .. %.2f%%            [0.56%% .. 23.5%%]\n",
		h.MinImprovementPct, h.MaxImprovementPct)
	fmt.Fprintf(&b, "  constrained delay vs lower bound: avg +%.1f%%        [< 10%%]\n", h.AvgConDiffFromLB)
	fmt.Fprintf(&b, "  unconstrained delay vs lower bound: avg +%.1f%%\n", h.AvgUncDiffFromLB)
	fmt.Fprintf(&b, "  area change constrained vs not: %+.2f%%              [almost unchanged]\n", h.AreaChangeAvgPct)
	fmt.Fprintf(&b, "  rows with con diff < 10%% or < half of unc: %d/%d\n", h.HalfOrTenSatisfied, nRows)
	return b.String()
}

// Fig1DelayGraph dumps the global delay graph with its arc delays — an
// ASCII rendering of the paper's Fig. 1 delay model.
func Fig1DelayGraph(ckt *circuit.Circuit, wirelenUm []float64) (string, error) {
	g, err := dgraph.New(ckt)
	if err != nil {
		return "", err
	}
	tm := g.NewTiming()
	if wirelenUm == nil {
		wirelenUm = make([]float64, len(ckt.Nets))
	}
	tm.SetLumped(wirelenUm)
	tm.Analyze()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1: global delay graph G_D of %s (arc delays, ps)\n", ckt.Name)
	for a := range g.Arcs {
		arc := &g.Arcs[a]
		from, to := ckt.PinName(g.Verts[arc.From]), ckt.PinName(g.Verts[arc.To])
		kind := "cell"
		if arc.Net != dgraph.NoNet {
			kind = "net " + ckt.Nets[arc.Net].Name
		}
		fmt.Fprintf(&b, "  %-12s -> %-12s %8.2f  (%s)\n", from, to, tm.ArcDelay[a], kind)
	}
	for p := range tm.Cons {
		fmt.Fprintf(&b, "  constraint %s: critical %.2f ps, limit %.2f ps, margin %.2f ps\n",
			ckt.Cons[p].Name, tm.Cons[p].Worst, ckt.Cons[p].Limit, tm.Cons[p].Margin)
	}
	return b.String(), nil
}

// Fig3RoutingGraph dumps a net's routing graph Gr(n) — an ASCII rendering
// of the paper's Fig. 3.
func Fig3RoutingGraph(ckt *circuit.Circuit, g *rgraph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: routing graph Gr(%s): %d vertices, %d edges (%d alive)\n",
		ckt.Nets[g.Net].Name, len(g.Verts), len(g.Edges), g.AliveCount())
	for i := range g.Edges {
		e := &g.Edges[i]
		status := "alive"
		if !e.Alive {
			status = "deleted"
		} else if e.Bridge {
			status = "bridge"
		}
		fmt.Fprintf(&b, "  e%-3d %-6s ch=%d x=[%d,%d] len=%6.1f  %s\n",
			i, e.Kind, e.Ch, e.X1, e.X2, e.Len, status)
	}
	return b.String()
}

// Fig4DensityChart draws a channel's d_M / d_m profiles — an ASCII
// rendering of the paper's Fig. 4. '#' marks the bridge (lower-bound)
// density d_m, '+' the extra density up to d_M.
func Fig4DensityChart(dens *density.State, ch int) string {
	dM := dens.ProfileM(ch)
	dm := dens.Profilem(ch)
	st := dens.Channel(ch)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: channel %d density (C_M=%d NC_M=%d C_m=%d NC_m=%d)\n",
		ch, st.CM, st.NCM, st.Cm, st.NCm)
	for level := st.CM; level >= 1; level-- {
		fmt.Fprintf(&b, "%3d |", level)
		for x := range dM {
			switch {
			case dm[x] >= level:
				b.WriteByte('#')
			case dM[x] >= level:
				b.WriteByte('+')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "    +%s\n", strings.Repeat("-", len(dM)))
	return b.String()
}

// CongestionTable lists every channel's §3.3 parameters plus its final
// track usage — the area story per channel.
func CongestionTable(dens *density.State, tracks []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Channel congestion:\n")
	fmt.Fprintf(&b, "%-8s %6s %6s %6s %6s %8s\n", "channel", "C_M", "NC_M", "C_m", "NC_m", "tracks")
	total := 0
	for ch := 0; ch < dens.Channels(); ch++ {
		st := dens.Channel(ch)
		tr := st.CM
		if ch < len(tracks) {
			tr = tracks[ch]
		}
		total += tr
		fmt.Fprintf(&b, "%-8d %6d %6d %6d %6d %8d\n", ch, st.CM, st.NCM, st.Cm, st.NCm, tr)
	}
	fmt.Fprintf(&b, "%-8s %35s %8d\n", "total", "", total)
	return b.String()
}
