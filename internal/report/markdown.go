package report

import (
	"fmt"
	"strings"

	"repro/internal/experiment"
)

// Markdown renders Tables 1-3 and the headline as GitHub-flavored
// markdown — the exact content EXPERIMENTS.md records, regenerable.
func Markdown(rows []*experiment.Row) string {
	var b strings.Builder
	b.WriteString("## Table 1 — test circuits\n\n")
	b.WriteString("| Data | Circuit | Placement | cells | nets | consts. |\n")
	b.WriteString("|------|---------|-----------|-------|------|---------|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %d | %d |\n",
			r.Name, r.Name[:2], r.Name[2:], r.Cells, r.Nets, r.Cons)
	}
	b.WriteString("\n## Table 2 — routing results\n\n")
	b.WriteString("| Data | Delay con (ps) | Delay unc (ps) | Δ% | Area con (mm²) | Area unc (mm²) | Len con (mm) | CPU con (s) |\n")
	b.WriteString("|------|------------|------------|-----|------------|------------|----------|---------|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %.1f | %.1f | %.1f%% | %.3f | %.3f | %.1f | %.2f |\n",
			r.Name, r.Con.DelayPs, r.Unc.DelayPs, r.DelayImprovementPct(),
			r.Con.AreaMm2, r.Unc.AreaMm2, r.Con.LengthMm, r.Con.CPUSec)
	}
	b.WriteString("\n## Table 3 — difference from the lower bound\n\n")
	b.WriteString("| Data | lower bound (ps) | Constrained (%) | Unconstrained (%) |\n")
	b.WriteString("|------|-------------|--------------|----------------|\n")
	for _, r := range rows {
		con, unc := r.DiffPct()
		fmt.Fprintf(&b, "| %s | %.1f | %+.1f | %+.1f |\n", r.Name, r.LowerBoundPs, con, unc)
	}
	h := experiment.Summarize(rows)
	fmt.Fprintf(&b, "\nHeadline: average delay reduction **%.1f%% of the lower bound** (paper: 17.6%%); ", h.AvgReductionOfLB)
	fmt.Fprintf(&b, "improvement range %.2f%%–%.2f%% (paper: 0.56%%–23.5%%); ", h.MinImprovementPct, h.MaxImprovementPct)
	fmt.Fprintf(&b, "area change %+.2f%% (paper: almost unchanged).\n", h.AreaChangeAvgPct)
	return b.String()
}
