package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/dgraph"
)

// TimingReport renders an STA-style report: every constraint with its
// limit, critical delay and margin (worst first), and for the worst
// `paths` constraints the full critical path with per-arc arrival times.
func TimingReport(ckt *circuit.Circuit, tm *dgraph.Timing, paths int) string {
	var b strings.Builder
	order := make([]int, len(tm.Cons))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool {
		return tm.Cons[order[a]].Margin < tm.Cons[order[c]].Margin
	})
	fmt.Fprintf(&b, "Timing report: %d constraints\n", len(tm.Cons))
	fmt.Fprintf(&b, "%-6s %10s %10s %10s  %s\n", "Cons", "limit(ps)", "delay(ps)", "margin", "status")
	for _, p := range order {
		status := "MET"
		if tm.Cons[p].Margin < 0 {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "%-6s %10.1f %10.1f %10.1f  %s\n",
			ckt.Cons[p].Name, ckt.Cons[p].Limit, tm.Cons[p].Worst, tm.Cons[p].Margin, status)
	}
	for i, p := range order {
		if i >= paths {
			break
		}
		b.WriteString(pathText(ckt, tm, p))
	}
	return b.String()
}

func pathText(ckt *circuit.Circuit, tm *dgraph.Timing, p int) string {
	var b strings.Builder
	arcs := tm.CriticalPath(p)
	fmt.Fprintf(&b, "\nCritical path of %s (%d arcs):\n", ckt.Cons[p].Name, len(arcs))
	if len(arcs) == 0 {
		fmt.Fprintf(&b, "  (no path)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-14s %10s %10s  %s\n", "point", "incr(ps)", "arrive(ps)", "via")
	first := tm.G.Arcs[arcs[0]].From
	fmt.Fprintf(&b, "  %-14s %10s %10.1f  (source)\n", ckt.PinName(tm.G.Verts[first]), "-", 0.0)
	arrive := 0.0
	for _, a := range arcs {
		arc := &tm.G.Arcs[a]
		arrive += tm.ArcDelay[a]
		via := "cell arc"
		if arc.Net != dgraph.NoNet {
			via = "net " + ckt.Nets[arc.Net].Name
		}
		fmt.Fprintf(&b, "  %-14s %10.2f %10.1f  %s\n",
			ckt.PinName(tm.G.Verts[arc.To]), tm.ArcDelay[a], arrive, via)
	}
	return b.String()
}
