package repro_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden table files")

// TestGoldenTables pins the reproduction's deterministic numbers (Tables
// 1 and 3; Table 2 contains wall-clock CPU and is excluded). Any change to
// the generator, router or evaluation that moves these numbers must be
// deliberate: re-bless with `go test -run TestGoldenTables -update`.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	rows, err := experiment.RunAll(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := report.Table1(rows) + "\n" + report.Table3(rows)
	path := filepath.Join("testdata", "golden_tables.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("tables changed; if intentional, re-bless with -update.\n--- got\n%s\n--- want\n%s",
			got, string(want))
	}
	// The headline must stay in the paper's neighbourhood.
	h := experiment.Summarize(rows)
	if h.AvgReductionOfLB < 10 || h.AvgReductionOfLB > 25 {
		t.Errorf("average reduction %.1f%% drifted out of the paper's neighbourhood (17.6%%)", h.AvgReductionOfLB)
	}
	if !strings.Contains(got, "C3P1") {
		t.Error("golden content incomplete")
	}
}
