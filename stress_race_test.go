// Race and aliasing stress for the pooled-workspace routing engine. The
// zero-allocation hot path leans on reused scratch buffers (per-router
// workspaces, package-level tree pools), so the two failure modes worth a
// dedicated regression are (1) concurrent routes racing on a shared pool
// and (2) a later route mutating an earlier route's still-live result
// through a leaked backing array. Run with -race to arm the first check.
package repro_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
)

// stressCircuit generates the smallest data set once per test.
func stressCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	p, err := gen.Dataset(gen.DatasetNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

// TestConcurrentWorkerCountsIdentical routes the same circuit from four
// goroutines at once, one per worker-pool size, and requires every run to
// produce byte-identical routedb JSON. Concurrent routers share the
// package-level tree pool and the global workpool, so under -race this
// doubles as the data-race detector for the pooled scratch memory. The
// routes run concurrently; fingerprinting happens after the join so no
// goroutine touches testing.T.
func TestConcurrentWorkerCountsIdentical(t *testing.T) {
	ckt := stressCircuit(t)
	workerCounts := []int{1, 2, 4, 8}
	for round := 0; round < 2; round++ {
		results := make([]*core.Result, len(workerCounts))
		errs := make([]error, len(workerCounts))
		var wg sync.WaitGroup
		for i, w := range workerCounts {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				results[i], errs[i] = core.Route(ckt, core.Config{UseConstraints: true, Workers: w})
			}(i, w)
		}
		wg.Wait()
		var want []byte
		for i, w := range workerCounts {
			if errs[i] != nil {
				t.Fatalf("round %d: workers=%d: %v", round, w, errs[i])
			}
			got := fingerprint(t, results[i])
			if i == 0 {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: workers=%d routed differently from workers=%d (%d vs %d bytes)",
					round, w, workerCounts[0], len(got), len(want))
			}
		}
	}
}

// TestShardWorkerMatrixIdentical is the acceptance matrix of the sharded
// round-selection engine: on every data set, routing with shards ∈
// {1, 2, 4} × workers ∈ {1, 2, 8} must produce routedb bytes identical
// to the fully sequential route (workers=1, shards=1). The per-shard
// top-k scans, the deterministic merge and the per-commit verification
// must reproduce the sequential argmin schedule exactly — any
// scheduling or partition leak shows up here as a byte diff.
func TestShardWorkerMatrixIdentical(t *testing.T) {
	names := gen.DatasetNames()
	if testing.Short() {
		names = names[:1]
	}
	for _, ds := range names {
		t.Run(ds, func(t *testing.T) {
			p, err := gen.Dataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			ckt, err := gen.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := core.Route(ckt, core.Config{UseConstraints: true, Workers: 1, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(t, seq)
			for _, s := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("shards=%d", s), func(t *testing.T) {
					for _, w := range []int{1, 2, 8} {
						t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
							res, err := core.Route(ckt, core.Config{UseConstraints: true, Workers: w, Shards: s})
							if err != nil {
								t.Fatal(err)
							}
							if got := fingerprint(t, res); !bytes.Equal(got, want) {
								t.Fatalf("shards=%d workers=%d routed differently from the sequential route (%d vs %d bytes)",
									s, w, len(got), len(want))
							}
						})
					}
				})
			}
		})
	}
}

// TestConsecutiveRoutesShareNoBackingArrays is the aliasing regression for
// the recycled scratch: a second route of the same circuit must not hand
// out graph storage still referenced by the first route's result. It
// checks pointer identity of every per-net slice pair directly, and then
// re-fingerprints the first result after the second route to prove it was
// not mutated through any backing array the identity check missed.
func TestConsecutiveRoutesShareNoBackingArrays(t *testing.T) {
	ckt := stressCircuit(t)
	cfg := core.Config{UseConstraints: true, Workers: 2}

	resA, err := core.Route(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fpA := fingerprint(t, resA)

	resB, err := core.Route(ckt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := range resA.Graphs {
		ga, gb := resA.Graphs[n], resB.Graphs[n]
		if ga == gb {
			t.Fatalf("net %d: both results hold the same *Graph", n)
		}
		if len(ga.Verts) > 0 && len(gb.Verts) > 0 && &ga.Verts[0] == &gb.Verts[0] {
			t.Fatalf("net %d: Verts backing array shared between consecutive routes", n)
		}
		if len(ga.Edges) > 0 && len(gb.Edges) > 0 && &ga.Edges[0] == &gb.Edges[0] {
			t.Fatalf("net %d: Edges backing array shared between consecutive routes", n)
		}
	}

	if got := fingerprint(t, resA); !bytes.Equal(got, fpA) {
		t.Fatalf("first result changed after routing again: %d vs %d bytes", len(got), len(fpA))
	}
}
