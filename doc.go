// Package repro reproduces Harada & Kitazawa, "A Global Router Optimizing
// Timing and Area for High-Speed Bipolar LSI's" (DAC 1994).
//
// The implementation lives under internal/: the circuit model (circuit),
// chip geometry (grid), delay graph and STA (dgraph), per-net routing
// graphs (rgraph), channel-density estimation (density), feedthrough
// assignment and feed-cell insertion (feed), the global router itself
// (core), the channel-router substrate (chanroute), the half-perimeter
// lower bound (lowerbound), the synthetic circuit generator (gen), the
// experiment driver (experiment) and table/figure rendering (report).
//
// Executables: cmd/bgr-gen, cmd/bgr-route, cmd/bgr-paper. Runnable
// examples live in examples/. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation; see EXPERIMENTS.md.
package repro
