// Allocation gate for the routing hot path: the candidate-selection sweep
// and the incremental timing flush must run allocation-free in steady
// state. These tests fail the ordinary `go test` run (no benchmark flags
// needed) the moment a change puts an allocation back on either path, and
// CI runs the matching benchmarks with -benchmem as a second, independent
// reading of the same invariant.
package repro_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/gen"
)

// loadDataset generates one of the paper's data sets for a *testing.T
// (mustDataset is the *testing.B twin).
func loadDataset(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	p, err := gen.Dataset(name)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

// allocsPerRun warms f once (lazily-sized scratch grows on first touch,
// which is one-time cost, not steady state) and then measures.
func allocsPerRun(f func()) float64 {
	f()
	return testing.AllocsPerRun(100, f)
}

// TestSelectEdgeAllocFree gates the §3.4 selection sweep: both the cold
// sweep (every net rescored through the dirty-net bitset) and the warm
// sweep (every score served from the per-net cache) must not allocate.
func TestSelectEdgeAllocFree(t *testing.T) {
	ckt := loadDataset(t, "C1P1")
	p, err := core.NewProbe(ckt, core.Config{UseConstraints: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := allocsPerRun(func() {
		p.InvalidateAll()
		if _, _, ok := p.SelectEdge(false); !ok {
			t.Fatal("no candidate")
		}
	}); got != 0 {
		t.Errorf("cold SelectEdge sweep: %.1f allocs/op, want 0", got)
	}
	if got := allocsPerRun(func() {
		if _, _, ok := p.SelectEdge(false); !ok {
			t.Fatal("no candidate")
		}
	}); got != 0 {
		t.Errorf("warm SelectEdge sweep: %.1f allocs/op, want 0", got)
	}
}

// TestSelectRoundAllocFree gates the sharded round protocol: one full
// selection round — parallel per-shard scans, the deterministic top-k
// merge, and the first verified commit pick — must not allocate, cold or
// warm, sequential or through the worker pool. The round buffers are
// preallocated in setupShards; this test is what keeps them that way.
func TestSelectRoundAllocFree(t *testing.T) {
	ckt := loadDataset(t, "C1P1")
	for _, tc := range []struct {
		tag     string
		workers int
		shards  int
	}{{"seq", 1, 1}, {"sharded", 2, 4}} {
		p, err := core.NewProbe(ckt, core.Config{UseConstraints: true, Workers: tc.workers, Shards: tc.shards})
		if err != nil {
			t.Fatal(err)
		}
		if got := allocsPerRun(func() {
			p.InvalidateAll()
			if _, _, ok := p.SelectRound(false); !ok {
				t.Fatal("no candidate")
			}
		}); got != 0 {
			t.Errorf("%s: cold SelectRound: %.1f allocs/op, want 0", tc.tag, got)
		}
		if got := allocsPerRun(func() {
			if _, _, ok := p.SelectRound(false); !ok {
				t.Fatal("no candidate")
			}
		}); got != 0 {
			t.Errorf("%s: warm SelectRound: %.1f allocs/op, want 0", tc.tag, got)
		}
	}
}

// TestTimingFlushAllocFree gates the incremental timing engine: a sparse
// net perturbation followed by a dirty-set Flush — the inner loop of every
// rip-up-and-reroute step — must not allocate.
func TestTimingFlushAllocFree(t *testing.T) {
	ckt := loadDataset(t, "C3P1")
	dg, err := dgraph.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	tm := dg.NewTiming()
	tm.Workers = 1
	wl := make([]float64, len(ckt.Nets))
	for i := range wl {
		wl[i] = 300
	}
	tm.SetLumped(wl)
	tm.Flush()
	nets := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		nets = append(nets, (i*131)%len(ckt.Nets))
	}
	i := 0
	if got := allocsPerRun(func() {
		i++
		for _, n := range nets {
			tm.SetNetLumped(n, 300+float64(i%7))
		}
		tm.Flush()
	}); got != 0 {
		t.Errorf("perturb+Flush: %.1f allocs/op, want 0", got)
	}
}
